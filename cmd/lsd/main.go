// Command lsd ("load shedding daemon") runs the monitoring system over
// a generated or recorded trace and reports how the load shedding
// scheme behaved: per-second controller state while running, then
// per-query accuracy against a lossless reference.
//
//	lsd -preset cesca2 -dur 30s -overload 2 -scheme predictive -strategy mmfs_pkt
//	lsd -trace trace.bin -overload 2.5 -scheme reactive
//
// With -shards N the trace is split across N links by flow hash and a
// Cluster of per-link monitors runs under the global budget coordinator
// selected by -shard-policy ("static" disables coordination):
//
//	lsd -preset cesca2 -overload 2 -shards 4 -shard-policy mmfs_cpu
//
// With -stream the run uses the constant-memory streaming runtime: a
// trace file is read from disk batch by batch (never fully loaded), a
// generated source runs for -max-bins batches (-1 = forever), and
// results go to a rolling aggregator that prints a report every -report
// of trace time instead of accumulating every bin:
//
//	lsd -stream -preset cesca2 -max-bins -1 -overload 2    # run forever
//	lsd -stream -trace big.bin -report 30s
//
// With -serve ADDR the process becomes a long-running service: packets
// arrive over the ingest source named by -ingest (a live UDP or unixgram
// socket, a tail-followed trace file, or the unbounded generator), and
// ADDR serves the HTTP admin plane — /healthz, /readyz, /metrics
// (Prometheus), and GET/POST/DELETE /queries for changing the query set
// without a restart. -feed replays generated traffic into a serving
// instance's socket, paced by wall clock:
//
//	lsd -serve 127.0.0.1:9091 -ingest udp://127.0.0.1:9000
//	lsd -feed udp://127.0.0.1:9000 -preset cesca2 -dur 60s
//
// With -coordinator ADDR the process is the budget coordinator of a
// distributed cluster: workers connect to ADDR over TCP, report their
// demand, and receive budget grants computed by -shard-policy from the
// -capacity total. With -worker ADDR the process is one such worker — a
// serving monitor whose budget is granted remotely, and which degrades
// to local-only shedding whenever the coordinator is unreachable:
//
//	lsd -coordinator 127.0.0.1:9800 -shard-policy mmfs_cpu -capacity 2e6 -serve 127.0.0.1:9091
//	lsd -worker 127.0.0.1:9800 -node mon-a -ingest udp://127.0.0.1:9000 -serve 127.0.0.1:9092
//
// All modes shut down cleanly on SIGINT/SIGTERM: the engine stops at
// the next bin boundary, flushes the open measurement interval, and the
// final report still prints.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/stats"
	"repro/pkg/loadshed"
)

func main() {
	var (
		preset    = flag.String("preset", "cesca2", "dataset preset (ignored with -trace)")
		traceFile = flag.String("trace", "", "replay this trace file instead of generating")
		dur       = flag.Duration("dur", 30*time.Second, "generated trace duration")
		scale     = flag.Float64("scale", 0.1, "generated trace rate scale")
		seed      = flag.Uint64("seed", 1, "seed")
		overload  = flag.Float64("overload", 2, "demand/capacity ratio to impose")
		scheme    = flag.String("scheme", "predictive", "predictive | reactive | original | none")
		strategy  = flag.String("strategy", "mmfs_pkt", "equal | eq_srates | mmfs_cpu | mmfs_pkt (predictive only)")
		full      = flag.Bool("full", false, "run all ten queries instead of the standard seven")
		customOn  = flag.Bool("custom", true, "enable custom load shedding (Chapter 6)")
		detectOn  = flag.Bool("detect", false, "online drift detection + adaptive MLR refit (predictive scheme only)")
		workers   = flag.Int("workers", 0, "query execution worker pool size (0 = auto: all cores single-link, inline per shard with -shards)")
		shards    = flag.Int("shards", 1, "split the trace across N links and run a Cluster")
		shardPol  = flag.String("shard-policy", "mmfs_cpu", "cross-shard budget policy: static | equal | eq_srates | mmfs_cpu | mmfs_pkt")
		stream    = flag.Bool("stream", false, "constant-memory streaming runtime: rolling report, no reference run")
		maxBins   = flag.Int("max-bins", 0, "with -stream on a generated trace: run for N batches (-1 = forever, 0 = derive from -dur)")
		report    = flag.Duration("report", 10*time.Second, "with -stream: trace time between rolling reports")
		serve     = flag.String("serve", "", "run as a service: HTTP admin plane address (e.g. 127.0.0.1:9091)")
		ingest    = flag.String("ingest", "gen", "with -serve: packet source — gen | udp://host:port | unix:///path | tail:file")
		feed      = flag.String("feed", "", "replay generated traffic into a serving lsd at udp://host:port or unix:///path")
		capFlag   = flag.Float64("capacity", 0, "with -serve: cycle budget per bin (0 = size from a generated probe via -overload); with -coordinator: total machine budget (required)")
		window    = flag.Duration("window", time.Minute, "with -serve: rolling-metrics window")
		coordAddr = flag.String("coordinator", "", "run the cluster budget coordinator on this TCP address")
		workerOf  = flag.String("worker", "", "run as a cluster worker of the coordinator at this address")
		nodeName  = flag.String("node", "", "with -worker: cluster node name (default workerPID)")
		minShare  = flag.Float64("min-share", 0, "with -worker: guaranteed fraction of reported demand")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "with -coordinator: budget reallocation period")
		lease     = flag.Duration("lease", 0, "grant/report freshness lease (0 = 3x heartbeat)")
		key       = flag.String("cluster-key", "", "pre-shared key authenticating the coordinator link (must match on both sides; empty = unauthenticated)")
		joinWait  = flag.Duration("join-timeout", 30*time.Second, "with -worker: give up and exit nonzero if the coordinator is unreachable this long at startup (0 = retry forever)")
		ckptEvery = flag.Int("checkpoint-every", 0, "with -worker: ship a durable shard checkpoint to the coordinator every K measurement intervals (0 = off; needs -custom=false)")
		stateDir  = flag.String("state-dir", "", "with -coordinator: spill the latest checkpoint per shard here and reload on restart")
		grace     = flag.Duration("grace", 0, "with -coordinator: how long past its lease a partitioned shard waits before failover (0 = 2x lease)")
	)
	flag.Parse()

	// -shard-policy configures the coordinator (in-process with -shards,
	// standalone with -coordinator); anywhere else it would be silently
	// ignored, so reject it at parse time rather than mislead.
	shardPolSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shard-policy" {
			shardPolSet = true
		}
	})
	if shardPolSet && *shards <= 1 && *coordAddr == "" {
		die(fmt.Errorf("-shard-policy needs -shards N>1 or -coordinator: a single monitor has no budget to split (workers get their policy from the coordinator)"))
	}

	// Every mode shuts down on SIGINT/SIGTERM by cancelling this context:
	// the engine finishes its current bin, flushes the open interval, and
	// the mode's final report still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mkQs := func() []loadshed.Query {
		if *full {
			return loadshed.AllQueries(loadshed.QueryConfig{Seed: *seed})
		}
		return loadshed.StandardQueries(loadshed.QueryConfig{Seed: *seed})
	}

	if *feed != "" {
		runFeed(ctx, *feed, *preset, *seed, *dur, *scale)
		return
	}
	if *coordAddr != "" {
		runCoordinator(ctx, coordOpts{
			listen:    *coordAddr,
			admin:     *serve,
			policy:    *shardPol,
			capacity:  *capFlag,
			heartbeat: *heartbeat,
			lease:     *lease,
			grace:     *grace,
			key:       *key,
			stateDir:  *stateDir,
		})
		return
	}
	if *workerOf != "" {
		runWorker(ctx, mkQs, workerOpts{
			coordAddr: *workerOf,
			name:      *nodeName,
			minShare:  *minShare,
			lease:     *lease,
			key:       *key,
			joinWait:  *joinWait,
			ckptEvery: *ckptEvery,
			serve: serveOpts{
				admin:    *serve,
				ingest:   *ingest,
				preset:   *preset,
				seed:     *seed,
				dur:      *dur,
				scale:    *scale,
				overload: *overload,
				capacity: *capFlag,
				window:   *window,
				scheme:   *scheme,
				strategy: *strategy,
				customOn: *customOn,
				detectOn: *detectOn,
				workers:  *workers,
			},
		})
		return
	}
	if *serve != "" {
		runServe(ctx, mkQs, serveOpts{
			admin:    *serve,
			ingest:   *ingest,
			preset:   *preset,
			seed:     *seed,
			dur:      *dur,
			scale:    *scale,
			overload: *overload,
			capacity: *capFlag,
			window:   *window,
			scheme:   *scheme,
			strategy: *strategy,
			customOn: *customOn,
			detectOn: *detectOn,
			workers:  *workers,
		})
		return
	}

	if *stream {
		if *shards > 1 {
			die(fmt.Errorf("-stream does not support -shards: splitting by flow hash materializes the whole trace, which is what -stream exists to avoid (use the Cluster.Stream API with per-link sources instead)"))
		}
		runStream(ctx, mkQs, *traceFile, *preset, *seed, *dur, *scale, *maxBins, *report, *overload, *scheme, *strategy, *customOn, *detectOn, *workers)
		return
	}

	src, err := openSource(*traceFile, *preset, *seed, *dur, *scale)
	die(err)

	if *shards > 1 {
		runCluster(src, mkQs, *shards, *shardPol, *scheme, *strategy, *overload, *seed, *customOn, *workers)
		return
	}

	fmt.Println("measuring full-rate demand ...")
	ovh, demand := loadshed.MeasureLoad(src, mkQs(), *seed+1)
	capacity := ovh + demand / *overload
	fmt.Printf("demand %.3g cycles/bin (+%.3g overhead), capacity %.3g (overload %.2fx)\n",
		demand, ovh, capacity, *overload)

	cfg := loadshed.Config{
		Capacity:        capacity,
		Seed:            *seed + 2,
		CustomShedding:  *customOn,
		ChangeDetection: *detectOn,
		Workers:         *workers,
	}
	cfg.Scheme, err = loadshed.ParseScheme(*scheme)
	die(err)
	if cfg.Scheme == loadshed.Predictive {
		cfg.Strategy, err = loadshed.StrategyByName(*strategy)
		die(err)
	}

	fmt.Println("running reference (lossless) ...")
	ref := loadshed.Reference(src, mkQs(), *seed+1)

	fmt.Printf("running %s ...\n", *scheme)
	res, runErr := loadshed.New(cfg, mkQs()).RunContext(ctx, src)

	fmt.Printf("\n%-6s %-9s %-9s %-8s %-6s %-6s\n", "sec", "pkts/s", "drops/s", "rate", "occ", "cpu%")
	for i := 0; i < len(res.Bins); i += 10 {
		var pkts, drops, rate, occ, cpu float64
		n := 0
		for j := i; j < i+10 && j < len(res.Bins); j++ {
			b := res.Bins[j]
			pkts += float64(b.WirePkts)
			drops += float64(b.DropPkts)
			rate += stats.Mean(b.Rates)
			occ += b.BufferBins
			cpu += (b.Used + b.Overhead + b.Shed) / capacity
			n++
		}
		fmt.Printf("%-6d %-9.0f %-9.0f %-8.3f %-6.2f %-6.1f\n",
			i/10, pkts, drops, rate/float64(n), occ/float64(n), 100*cpu/float64(n))
	}

	if runErr != nil {
		fmt.Printf("\nsignal received after %d bins: run stopped at a bin boundary; accuracy comparison skipped (it needs the complete run)\n", len(res.Bins))
		return
	}
	errs := loadshed.MeanErrors(mkQs(), res, ref)
	fmt.Printf("\nper-query mean accuracy error vs lossless reference:\n")
	for _, q := range mkQs() {
		fmt.Printf("  %-16s %6.2f%%\n", q.Name(), errs[q.Name()]*100)
	}
	fmt.Printf("\nuncontrolled drops: %d of %d packets (%.3f%%)\n",
		res.TotalDrops(), res.TotalWirePkts(),
		100*float64(res.TotalDrops())/float64(res.TotalWirePkts()))
}

// runStream drives the constant-memory streaming runtime: the source is
// read incrementally (a trace file is never fully loaded; a generated
// source may be unbounded), and results flow into a rolling aggregator
// that prints a report every reportEvery of trace time. No lossless
// reference run is possible online, so the accuracy section is replaced
// by the rolling unsampled-fraction proxy.
func runStream(ctx context.Context, mkQs func() []loadshed.Query, traceFile, preset string, seed uint64, dur time.Duration, scale float64, maxBins int, reportEvery time.Duration, overload float64, scheme, strategy string, customOn, detectOn bool, workers int) {
	openStream := func(bins int) (loadshed.Source, func(), error) {
		if traceFile != "" {
			f, err := loadshed.OpenTraceFile(traceFile)
			if err != nil {
				return nil, nil, err
			}
			return f, func() { f.Close() }, nil
		}
		cfg, err := loadshed.PresetConfig(preset, seed, dur, scale)
		if err != nil {
			return nil, nil, err
		}
		cfg.MaxBins = bins
		return loadshed.NewGenerator(cfg), func() {}, nil
	}

	// The live stream may be unbounded, so capacity is sized on a
	// bounded probe of the same traffic (-dur worth of it); the probe
	// itself streams, so even a huge trace file is never resident.
	fmt.Println("measuring full-rate demand (bounded probe) ...")
	probe, closeProbe, err := openStream(0)
	die(err)
	ovh, demand := loadshed.MeasureLoad(probe, mkQs(), seed+1)
	// NextBatch cannot surface read errors, so a truncated or corrupt
	// file would otherwise yield a confident demand number measured
	// over whatever prefix happened to parse.
	die(loadshed.SourceErr(probe))
	closeProbe()
	capacity := ovh + demand/overload
	fmt.Printf("demand %.3g cycles/bin (+%.3g overhead), capacity %.3g (overload %.2fx)\n",
		demand, ovh, capacity, overload)

	cfg := loadshed.Config{
		Capacity:        capacity,
		Seed:            seed + 2,
		CustomShedding:  customOn,
		ChangeDetection: detectOn,
		Workers:         workers,
	}
	cfg.Scheme, err = loadshed.ParseScheme(scheme)
	die(err)
	if cfg.Scheme == loadshed.Predictive {
		cfg.Strategy, err = loadshed.StrategyByName(strategy)
		die(err)
	}

	src, closeSrc, err := openStream(maxBins)
	die(err)
	defer closeSrc()

	binsPerReport := int(reportEvery / src.TimeBin())
	if binsPerReport < 1 {
		binsPerReport = 1
	}
	roll := loadshed.NewRollingStats(binsPerReport)

	fmt.Printf("streaming (%s scheme, report every %v) ...\n", scheme, reportEvery)
	fmt.Printf("\n%-10s %-9s %-8s %-10s %-8s %-6s %-6s\n",
		"trace-time", "pkts/s", "drop%", "unsampled%", "rate", "occ", "cpu%")
	sys := loadshed.New(cfg, mkQs())
	bins := 0
	streamErr := sys.StreamContext(ctx, src, loadshed.Tee(roll, loadshed.SinkFuncs{
		Bin: func(b *loadshed.BinStats) {
			// Snapshot scans the whole window; only pay for it on a
			// reporting boundary, not every bin.
			if bins++; bins%binsPerReport != 0 {
				return
			}
			s := roll.Snapshot()
			fmt.Printf("%-10v %-9.0f %-8.3f %-10.3f %-8.3f %-6.2f %-6.1f\n",
				b.Start+src.TimeBin(), s.PktsPerBin/src.TimeBin().Seconds(),
				100*s.DropFrac, 100*s.UnsampledFrac,
				s.MeanGlobalRate, s.MeanDelay, 100*s.MeanUtil)
		},
	}))
	if streamErr != nil {
		fmt.Println("\nsignal received: stream stopped at a bin boundary")
	}
	// A truncated or corrupt trace file ends the stream silently from
	// NextBatch's point of view; surface it and exit nonzero.
	die(loadshed.SourceErr(src))

	s := roll.Snapshot()
	dropPct := 0.0
	if s.WirePkts > 0 {
		dropPct = 100 * float64(s.DropPkts) / float64(s.WirePkts)
	}
	fmt.Printf("\nstream ended after %d bins, %d intervals: %d of %d packets dropped uncontrolled (%.3f%%)\n",
		s.Bins, s.Intervals, s.DropPkts, s.WirePkts, dropPct)
	fmt.Printf("per-query mean sampling rate over the last %d bins:\n", s.WindowBins)
	for i, q := range s.Queries {
		fmt.Printf("  %-16s %6.3f\n", q, s.MeanRates[i])
	}
}

// runCluster splits the trace across n links by flow hash and runs one
// monitor per link under the global budget coordinator.
func runCluster(src loadshed.Source, mkQs func() []loadshed.Query, n int, policyName, scheme, strategy string, overload float64, seed uint64, customOn bool, workers int) {
	policy, err := loadshed.ShardPolicyByName(policyName)
	die(err)

	fmt.Printf("splitting trace across %d links ...\n", n)
	links := loadshed.SplitFlows(src, n, seed)

	fmt.Println("measuring per-link full-rate demand ...")
	var total float64
	for i, l := range links {
		ovh, demand := loadshed.MeasureLoad(l, mkQs(), seed+1)
		cap := ovh + demand/overload
		total += cap
		fmt.Printf("  link%d: demand %.3g + overhead %.3g cycles/bin -> share %.3g\n", i, demand, ovh, cap)
	}
	fmt.Printf("total machine capacity %.3g cycles/bin (overload %.2fx per link), policy %s\n",
		total, overload, policyName)

	base := loadshed.Config{Seed: seed + 2, CustomShedding: customOn, Workers: workers}
	base.Scheme, err = loadshed.ParseScheme(scheme)
	die(err)
	if base.Scheme == loadshed.Predictive {
		base.Strategy, err = loadshed.StrategyByName(strategy)
		die(err)
	}
	shardCfgs := make([]loadshed.Shard, n)
	for i, l := range links {
		shardCfgs[i] = loadshed.Shard{Name: fmt.Sprintf("link%d", i), Source: l, Queries: mkQs()}
	}

	fmt.Printf("running %d-shard cluster ...\n", n)
	res := loadshed.NewCluster(loadshed.ClusterConfig{
		Base:          base,
		TotalCapacity: total,
		ShardPolicy:   policy,
	}, shardCfgs).Run()

	fmt.Printf("\n%-8s %-10s %-9s %-8s %-10s %-8s\n", "shard", "pkts", "drops", "rate", "cap-share", "err%")
	for i, sh := range res.Shards {
		var rate, cap float64
		for _, b := range sh.Result.Bins {
			rate += stats.Mean(b.Rates)
		}
		for _, c := range sh.Capacities {
			cap += c
		}
		nb := float64(len(sh.Result.Bins))
		ref := loadshed.Reference(links[i], mkQs(), seed+1)
		var errSum float64
		errs := loadshed.MeanErrors(mkQs(), sh.Result, ref)
		for _, e := range errs {
			errSum += e
		}
		fmt.Printf("%-8s %-10d %-9d %-8.3f %-10.2f %-8.2f\n",
			sh.Name, sh.Result.TotalWirePkts(), sh.Result.TotalDrops(),
			rate/nb, cap/nb/(total/float64(n)), 100*errSum/float64(len(errs)))
	}
	fmt.Printf("\naggregate: %d of %d packets dropped uncontrolled (%.3f%%)\n",
		res.TotalDrops(), res.TotalWirePkts(),
		100*float64(res.TotalDrops())/float64(res.TotalWirePkts()))
}

func openSource(traceFile, preset string, seed uint64, dur time.Duration, scale float64) (loadshed.Source, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return loadshed.ReadTrace(f)
	}
	cfg, err := loadshed.PresetConfig(preset, seed, dur, scale)
	if err != nil {
		return nil, err
	}
	return loadshed.NewGenerator(cfg), nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsd:", err)
		os.Exit(1)
	}
}
