// coordmode.go — the distributed deployment of lsd: -coordinator runs
// the budget coordinator as its own process, serving the TCP grant
// protocol to worker monitors; -worker runs one monitor as a cluster
// member that reports demand to a remote coordinator and applies the
// budget it is granted, degrading to local-only shedding whenever the
// coordinator is unreachable.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/pkg/loadshed"
)

// coordOpts carries the flag values the coordinator mode consumes.
type coordOpts struct {
	listen    string  // TCP address workers connect to
	admin     string  // HTTP admin plane address ("" = none)
	policy    string  // shard policy name (must coordinate; "static" rejected)
	capacity  float64 // total machine budget, cycles/bin
	heartbeat time.Duration
	lease     time.Duration
	grace     time.Duration // partition-to-failover window (0 = 2x lease)
	key       string        // pre-shared cluster key ("" = unauthenticated)
	stateDir  string        // checkpoint spill directory ("" = memory only)
}

// runCoordinator serves the budget coordinator until a signal arrives.
func runCoordinator(ctx context.Context, o coordOpts) {
	policy, err := loadshed.ShardPolicyByName(o.policy)
	die(err)
	if policy == nil {
		die(fmt.Errorf("-coordinator needs a coordinating -shard-policy; %q disables coordination (every worker would keep its static budget)", o.policy))
	}
	if o.capacity <= 0 {
		die(fmt.Errorf("-coordinator needs -capacity: the total machine budget in cycles/bin cannot be probed from traffic the coordinator never sees"))
	}

	coord := loadshed.NewCoordinator(policy, o.capacity)
	if o.stateDir != "" {
		// Reload any spilled checkpoints before serving: shards that
		// crashed with the previous coordinator come back as partitioned
		// members whose state is immediately offerable.
		die(coord.SetStateDir(o.stateDir))
		fmt.Printf("state dir %s: %d checkpoint(s) reloaded\n", o.stateDir, coord.CheckpointsStored())
	}
	ln, err := net.Listen("tcp", o.listen)
	die(err)
	srv := loadshed.ServeCoordinator(ln, coord, loadshed.CoordServerConfig{
		Heartbeat: o.heartbeat,
		Lease:     o.lease,
		Grace:     o.grace,
		Key:       o.key,
	})
	auth := "unauthenticated"
	if o.key != "" {
		auth = "PSK-authenticated"
	}
	fmt.Printf("coordinator on %s: policy %s, total capacity %.3g cycles/bin, heartbeat %v, %s\n",
		srv.Addr(), o.policy, o.capacity, o.heartbeat, auth)

	var admin *http.Server
	if o.admin != "" {
		aln, err := net.Listen("tcp", o.admin)
		die(err)
		admin = &http.Server{Handler: coordinatorMux(srv, o)}
		go admin.Serve(aln)
		fmt.Printf("admin plane on http://%s (healthz, metrics, cluster)\n", aln.Addr())
	}

	<-ctx.Done()
	srv.Close()
	if admin != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		admin.Shutdown(shCtx)
	}

	fmt.Println("signal received: coordinator stopped")
	for _, n := range coord.Status() {
		state := "live"
		switch {
		case n.Done:
			state = "done"
		case n.Partitioned:
			state = "partitioned"
		}
		fmt.Printf("  node %-12s bin %-7d demand %.3g grant %.3g (%s)\n",
			n.Name, n.Bin, n.Demand, n.Grant, state)
	}
}

// coordinatorMux is the coordinator's admin plane: health, per-node
// budget/demand/partition gauges, the /cluster membership listing, and
// the /cluster/migrate verb that drains a shard onto another worker.
func coordinatorMux(srv *loadshed.CoordServer, o coordOpts) *http.ServeMux {
	coord := srv.Coordinator()
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		nodes := coord.Status()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintln(w, "# HELP lsd_up Whether the coordinator is serving.")
		fmt.Fprintln(w, "# TYPE lsd_up gauge")
		fmt.Fprintln(w, "lsd_up 1")
		fmt.Fprintln(w, "# HELP lsd_cluster_total_capacity Total machine budget distributed per bin, cycles.")
		fmt.Fprintln(w, "# TYPE lsd_cluster_total_capacity gauge")
		fmt.Fprintf(w, "lsd_cluster_total_capacity %g\n", coord.Total())
		fmt.Fprintln(w, "# HELP lsd_cluster_nodes Nodes that ever joined the cluster.")
		fmt.Fprintln(w, "# TYPE lsd_cluster_nodes gauge")
		fmt.Fprintf(w, "lsd_cluster_nodes %d\n", len(nodes))
		fmt.Fprintln(w, "# HELP lsd_node_budget Cycle budget most recently granted to the node.")
		fmt.Fprintln(w, "# TYPE lsd_node_budget gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_budget{node=%q} %g\n", n.Name, n.Grant)
		}
		fmt.Fprintln(w, "# HELP lsd_node_demand EWMA full-rate demand the node last reported, cycles/bin.")
		fmt.Fprintln(w, "# TYPE lsd_node_demand gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_demand{node=%q} %g\n", n.Name, n.Demand)
		}
		fmt.Fprintln(w, "# HELP lsd_node_partitioned Whether the node's lease expired without a report.")
		fmt.Fprintln(w, "# TYPE lsd_node_partitioned gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_partitioned{node=%q} %d\n", n.Name, b2i(n.Partitioned))
		}
		fmt.Fprintln(w, "# HELP lsd_node_done Whether the node finished its trace.")
		fmt.Fprintln(w, "# TYPE lsd_node_done gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_done{node=%q} %d\n", n.Name, b2i(n.Done))
		}
		fmt.Fprintln(w, "# HELP lsd_node_checkpoint_bin First unprocessed bin of the shard's retained checkpoint (-1 = none).")
		fmt.Fprintln(w, "# TYPE lsd_node_checkpoint_bin gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_checkpoint_bin{node=%q} %d\n", n.Name, n.CheckpointBin)
		}
		fmt.Fprintln(w, "# HELP lsd_cluster_checkpoints_total Shard checkpoints stored by the coordinator.")
		fmt.Fprintln(w, "# TYPE lsd_cluster_checkpoints_total counter")
		fmt.Fprintf(w, "lsd_cluster_checkpoints_total %d\n", coord.CheckpointsStored())
		fmt.Fprintln(w, "# HELP lsd_cluster_failover_offers_total Adoption offers issued for crashed or migrating shards.")
		fmt.Fprintln(w, "# TYPE lsd_cluster_failover_offers_total counter")
		fmt.Fprintf(w, "lsd_cluster_failover_offers_total %d\n", coord.FailoverOffers())
		fmt.Fprintln(w, "# HELP lsd_coord_auth_failures_total Connections rejected by pre-shared-key authentication.")
		fmt.Fprintln(w, "# TYPE lsd_coord_auth_failures_total counter")
		fmt.Fprintf(w, "lsd_coord_auth_failures_total %d\n", srv.AuthFailures())
	})

	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Policy        string                     `json:"policy"`
			TotalCapacity float64                    `json:"total_capacity"`
			Heartbeat     string                     `json:"heartbeat"`
			Nodes         []loadshed.CoordNodeStatus `json:"nodes"`
		}{
			Policy:        o.policy,
			TotalCapacity: coord.Total(),
			Heartbeat:     o.heartbeat.String(),
			Nodes:         coord.Status(),
		})
	})

	// POST /cluster/migrate?from=NODE&to=NODE drains the source shard at
	// its next measurement-interval boundary and hands its final
	// checkpoint to the target worker, which resumes it bit-identically.
	// The handoff is asynchronous (drain, final checkpoint, directed
	// offer, adoption), so success is 202 Accepted; watch /cluster for
	// the shard moving.
	mux.HandleFunc("POST /cluster/migrate", func(w http.ResponseWriter, r *http.Request) {
		from, to := r.FormValue("from"), r.FormValue("to")
		if from == "" || to == "" {
			http.Error(w, "need from= and to= node names", http.StatusBadRequest)
			return
		}
		if err := coord.Migrate(from, to); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{
			"status": "accepted", "from": from, "to": to,
			"note": "source drains at its next interval boundary; target adopts the final checkpoint",
		})
	})

	return mux
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// workerOpts carries the flag values the worker mode consumes, on top
// of the serve options it shares (ingest, capacity sizing, admin).
type workerOpts struct {
	coordAddr string
	name      string
	minShare  float64
	lease     time.Duration
	key       string        // pre-shared cluster key ("" = unauthenticated)
	joinWait  time.Duration // startup bound on reaching the coordinator (0 = forever)
	ckptEvery int           // checkpoint cadence in measurement intervals (0 = off)
	serve     serveOpts
}

// shardSpec describes this worker's shard in the transferable form that
// travels inside every checkpoint, so any adopter can rebuild the same
// System and reopen the same traffic source.
func (o workerOpts) shardSpec(qs []loadshed.Query, capacity float64) loadshed.ShardSpec {
	specQs := make([]loadshed.QuerySpec, len(qs))
	for i, q := range qs {
		specQs[i] = loadshed.QuerySpec{Kind: q.Name(), Seed: o.serve.seed}
	}
	strategy := ""
	if o.serve.scheme == "predictive" {
		strategy = o.serve.strategy
	}
	return loadshed.ShardSpec{
		Scheme:          o.serve.scheme,
		Strategy:        strategy,
		Seed:            o.serve.seed + 2,
		Capacity:        capacity,
		Workers:         o.serve.workers,
		ChangeDetection: o.serve.detectOn,
		Queries:         specQs,
		MinShare:        o.minShare,
		Ingest:          o.serve.ingest,
		Preset:          o.serve.preset,
		TraceSeed:       o.serve.seed,
		TraceDur:        o.serve.dur,
		Scale:           o.serve.scale,
	}
}

// runWorker runs one monitor as a cluster member: ingest feeds a local
// System wrapped in a loadshed.Node whose transport is a TCP client of
// the remote coordinator. Coordination is advisory — an unreachable
// coordinator degrades the worker to local-only shedding on its last
// granted (or initial) capacity, and a reconnect rejoins the cluster.
func runWorker(ctx context.Context, mkQs func() []loadshed.Query, o workerOpts) {
	name := o.name
	if name == "" {
		name = fmt.Sprintf("worker%d", os.Getpid())
	}

	src, closeSrc, desc, err := openIngest(o.serve.ingest, o.serve)
	die(err)
	fmt.Printf("ingest: %s\n", desc)

	capacity := o.serve.capacity
	if capacity <= 0 {
		// The initial local budget, which also carries the worker through
		// coordinator outages; the first grant replaces it.
		fmt.Println("measuring full-rate demand (generated probe) ...")
		cfg, err := loadshed.PresetConfig(o.serve.preset, o.serve.seed, o.serve.dur, o.serve.scale)
		die(err)
		ovh, demand := loadshed.MeasureLoad(loadshed.NewGenerator(cfg), mkQs(), o.serve.seed+1)
		capacity = ovh + demand/o.serve.overload
		fmt.Printf("demand %.3g cycles/bin (+%.3g overhead), initial capacity %.3g (overload %.2fx)\n",
			demand, ovh, capacity, o.serve.overload)
	}

	cfg := loadshed.Config{
		Capacity:        capacity,
		Seed:            o.serve.seed + 2,
		CustomShedding:  o.serve.customOn,
		ChangeDetection: o.serve.detectOn,
		Workers:         o.serve.workers,
	}
	cfg.Scheme, err = loadshed.ParseScheme(o.serve.scheme)
	die(err)
	if cfg.Scheme == loadshed.Predictive {
		cfg.Strategy, err = loadshed.StrategyByName(o.serve.strategy)
		die(err)
	}

	client, err := loadshed.DialCoordinator(o.coordAddr, name, loadshed.CoordClientConfig{
		MinShare: o.minShare,
		Lease:    o.lease,
		Key:      o.key,
	})
	if client == nil {
		die(err)
	}
	defer client.Close()
	if err != nil {
		if o.joinWait <= 0 {
			fmt.Printf("coordinator %s unreachable (%v); shedding locally until it appears\n", o.coordAddr, err)
		} else {
			// Bounded join: a worker that cannot reach its coordinator at
			// startup is usually misconfigured (wrong address or wrong
			// -cluster-key), so fail fast instead of redialing forever.
			fmt.Printf("coordinator %s unreachable (%v); retrying for %v\n", o.coordAddr, err, o.joinWait)
			deadline := time.Now().Add(o.joinWait)
			for !client.Connected() {
				if time.Now().After(deadline) {
					client.Close()
					die(fmt.Errorf("coordinator %s still unreachable after -join-timeout %v", o.coordAddr, o.joinWait))
				}
				time.Sleep(50 * time.Millisecond)
			}
			fmt.Printf("joined coordinator %s as %q\n", o.coordAddr, name)
		}
	} else {
		fmt.Printf("joined coordinator %s as %q\n", o.coordAddr, name)
	}

	if o.ckptEvery > 0 && o.serve.customOn {
		fmt.Println("warning: -checkpoint-every needs -custom=false (custom load shedding has unserializable state); checkpoints will fail until it is disabled")
	}
	sys := loadshed.New(cfg, mkQs())
	node := loadshed.NewNode(sys, client, loadshed.NodeConfig{
		Name:            name,
		MinShare:        o.minShare,
		CheckpointEvery: o.ckptEvery,
		Spec:            o.shardSpec(mkQs(), capacity),
	})

	// Adopted shards: the coordinator pushes an orphaned shard's
	// checkpoint over this worker's link; each adoption runs as its own
	// Node + System + coordinator connection alongside the local shard.
	adoptions := newAdoptionState()
	adoptCtx, stopAdopting := context.WithCancel(ctx)
	defer stopAdopting()
	go adoptionLoop(adoptCtx, client, adoptions, o)
	windowBins := int(o.serve.window / src.TimeBin())
	sink := &serveSink{roll: loadshed.NewRollingStats(windowBins)}
	live, _ := src.(*loadshed.LiveSource)

	var admin *http.Server
	if o.serve.admin != "" {
		ln, err := net.Listen("tcp", o.serve.admin)
		die(err)
		admin = &http.Server{Handler: adminMux(sys, sink, live, o.serve.seed, func(w io.Writer) {
			fmt.Fprintln(w, "# HELP lsd_coord_connected Whether the coordinator connection is up.")
			fmt.Fprintln(w, "# TYPE lsd_coord_connected gauge")
			fmt.Fprintf(w, "lsd_coord_connected %d\n", b2i(client.Connected()))
			fmt.Fprintln(w, "# HELP lsd_coord_degraded Whether the worker is shedding on local capacity only (no lease-fresh grant).")
			fmt.Fprintln(w, "# TYPE lsd_coord_degraded gauge")
			fmt.Fprintf(w, "lsd_coord_degraded %d\n", b2i(client.Degraded()))
			fmt.Fprintln(w, "# HELP lsd_coord_reconnects_total Times the coordinator link was re-established.")
			fmt.Fprintln(w, "# TYPE lsd_coord_reconnects_total counter")
			fmt.Fprintf(w, "lsd_coord_reconnects_total %d\n", client.Reconnects())
			var grantCap float64
			if g, ok := client.Grant(); ok {
				grantCap = g.Capacity
			}
			fmt.Fprintln(w, "# HELP lsd_coord_grant_capacity Cycle budget of the current lease-fresh grant (0 while degraded).")
			fmt.Fprintln(w, "# TYPE lsd_coord_grant_capacity gauge")
			fmt.Fprintf(w, "lsd_coord_grant_capacity %g\n", grantCap)
			fmt.Fprintln(w, "# HELP lsd_node_capacity Cycle budget per bin the engine currently runs under.")
			fmt.Fprintln(w, "# TYPE lsd_node_capacity gauge")
			fmt.Fprintf(w, "lsd_node_capacity %g\n", sys.Governor().Capacity())
			fmt.Fprintln(w, "# HELP lsd_checkpoints_total Shard checkpoints shipped to the coordinator.")
			fmt.Fprintln(w, "# TYPE lsd_checkpoints_total counter")
			fmt.Fprintf(w, "lsd_checkpoints_total %d\n", node.CheckpointsSent())
			fmt.Fprintln(w, "# HELP lsd_checkpoint_errors_total Checkpoints that failed to snapshot or send.")
			fmt.Fprintln(w, "# TYPE lsd_checkpoint_errors_total counter")
			fmt.Fprintf(w, "lsd_checkpoint_errors_total %d\n", node.CheckpointErrors())
			fmt.Fprintln(w, "# HELP lsd_adopted_shards Shards this worker is currently running on behalf of failed or migrated peers.")
			fmt.Fprintln(w, "# TYPE lsd_adopted_shards gauge")
			fmt.Fprintf(w, "lsd_adopted_shards %d\n", adoptions.Active())
			fmt.Fprintln(w, "# HELP lsd_adoptions_total Adoption offers this worker has accepted.")
			fmt.Fprintln(w, "# TYPE lsd_adoptions_total counter")
			fmt.Fprintf(w, "lsd_adoptions_total %d\n", adoptions.Total())
		})}
		go admin.Serve(ln)
		fmt.Printf("admin plane on http://%s (healthz, readyz, metrics, queries)\n", ln.Addr())
	}

	unblock := context.AfterFunc(ctx, closeSrc)
	defer unblock()

	fmt.Printf("serving as cluster worker (%s scheme) ...\n", o.serve.scheme)
	streamErr := node.StreamContext(ctx, src, sink)
	closeSrc()

	// The local shard is finished (or drained away by a migration), but
	// adopted shards keep running until they finish or a signal lands.
	// The worker's own link stays open meanwhile: it is how new offers
	// arrive and how the coordinator sees this worker as live.
	if node.Drained() {
		fmt.Println("shard drained: final checkpoint handed to the coordinator for migration")
	}
	adoptions.Wait()
	stopAdopting()
	client.Close()
	if admin != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		admin.Shutdown(shCtx)
	}

	if streamErr != nil {
		fmt.Println("signal received: stream stopped at a bin boundary")
	}
	if err := loadshed.SourceErr(src); err != nil {
		die(fmt.Errorf("ingest failed: %w", err))
	}

	snap, _ := sink.snapshot()
	dropPct := 0.0
	if snap.WirePkts > 0 {
		dropPct = 100 * float64(snap.DropPkts) / float64(snap.WirePkts)
	}
	fmt.Printf("served %d bins, %d intervals: %d of %d packets dropped uncontrolled (%.3f%%)\n",
		snap.Bins, snap.Intervals, snap.DropPkts, snap.WirePkts, dropPct)
}
