// coordmode.go — the distributed deployment of lsd: -coordinator runs
// the budget coordinator as its own process, serving the TCP grant
// protocol to worker monitors; -worker runs one monitor as a cluster
// member that reports demand to a remote coordinator and applies the
// budget it is granted, degrading to local-only shedding whenever the
// coordinator is unreachable.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/pkg/loadshed"
)

// coordOpts carries the flag values the coordinator mode consumes.
type coordOpts struct {
	listen    string  // TCP address workers connect to
	admin     string  // HTTP admin plane address ("" = none)
	policy    string  // shard policy name (must coordinate; "static" rejected)
	capacity  float64 // total machine budget, cycles/bin
	heartbeat time.Duration
	lease     time.Duration
}

// runCoordinator serves the budget coordinator until a signal arrives.
func runCoordinator(ctx context.Context, o coordOpts) {
	policy, err := loadshed.ShardPolicyByName(o.policy)
	die(err)
	if policy == nil {
		die(fmt.Errorf("-coordinator needs a coordinating -shard-policy; %q disables coordination (every worker would keep its static budget)", o.policy))
	}
	if o.capacity <= 0 {
		die(fmt.Errorf("-coordinator needs -capacity: the total machine budget in cycles/bin cannot be probed from traffic the coordinator never sees"))
	}

	coord := loadshed.NewCoordinator(policy, o.capacity)
	ln, err := net.Listen("tcp", o.listen)
	die(err)
	srv := loadshed.ServeCoordinator(ln, coord, loadshed.CoordServerConfig{
		Heartbeat: o.heartbeat,
		Lease:     o.lease,
	})
	fmt.Printf("coordinator on %s: policy %s, total capacity %.3g cycles/bin, heartbeat %v\n",
		srv.Addr(), o.policy, o.capacity, o.heartbeat)

	var admin *http.Server
	if o.admin != "" {
		aln, err := net.Listen("tcp", o.admin)
		die(err)
		admin = &http.Server{Handler: coordinatorMux(coord, o)}
		go admin.Serve(aln)
		fmt.Printf("admin plane on http://%s (healthz, metrics, cluster)\n", aln.Addr())
	}

	<-ctx.Done()
	srv.Close()
	if admin != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		admin.Shutdown(shCtx)
	}

	fmt.Println("signal received: coordinator stopped")
	for _, n := range coord.Status() {
		state := "live"
		switch {
		case n.Done:
			state = "done"
		case n.Partitioned:
			state = "partitioned"
		}
		fmt.Printf("  node %-12s bin %-7d demand %.3g grant %.3g (%s)\n",
			n.Name, n.Bin, n.Demand, n.Grant, state)
	}
}

// coordinatorMux is the coordinator's admin plane: health, per-node
// budget/demand/partition gauges, and the /cluster membership listing.
func coordinatorMux(coord *loadshed.Coordinator, o coordOpts) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		nodes := coord.Status()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintln(w, "# HELP lsd_up Whether the coordinator is serving.")
		fmt.Fprintln(w, "# TYPE lsd_up gauge")
		fmt.Fprintln(w, "lsd_up 1")
		fmt.Fprintln(w, "# HELP lsd_cluster_total_capacity Total machine budget distributed per bin, cycles.")
		fmt.Fprintln(w, "# TYPE lsd_cluster_total_capacity gauge")
		fmt.Fprintf(w, "lsd_cluster_total_capacity %g\n", coord.Total())
		fmt.Fprintln(w, "# HELP lsd_cluster_nodes Nodes that ever joined the cluster.")
		fmt.Fprintln(w, "# TYPE lsd_cluster_nodes gauge")
		fmt.Fprintf(w, "lsd_cluster_nodes %d\n", len(nodes))
		fmt.Fprintln(w, "# HELP lsd_node_budget Cycle budget most recently granted to the node.")
		fmt.Fprintln(w, "# TYPE lsd_node_budget gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_budget{node=%q} %g\n", n.Name, n.Grant)
		}
		fmt.Fprintln(w, "# HELP lsd_node_demand EWMA full-rate demand the node last reported, cycles/bin.")
		fmt.Fprintln(w, "# TYPE lsd_node_demand gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_demand{node=%q} %g\n", n.Name, n.Demand)
		}
		fmt.Fprintln(w, "# HELP lsd_node_partitioned Whether the node's lease expired without a report.")
		fmt.Fprintln(w, "# TYPE lsd_node_partitioned gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_partitioned{node=%q} %d\n", n.Name, b2i(n.Partitioned))
		}
		fmt.Fprintln(w, "# HELP lsd_node_done Whether the node finished its trace.")
		fmt.Fprintln(w, "# TYPE lsd_node_done gauge")
		for _, n := range nodes {
			fmt.Fprintf(w, "lsd_node_done{node=%q} %d\n", n.Name, b2i(n.Done))
		}
	})

	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Policy        string                     `json:"policy"`
			TotalCapacity float64                    `json:"total_capacity"`
			Heartbeat     string                     `json:"heartbeat"`
			Nodes         []loadshed.CoordNodeStatus `json:"nodes"`
		}{
			Policy:        o.policy,
			TotalCapacity: coord.Total(),
			Heartbeat:     o.heartbeat.String(),
			Nodes:         coord.Status(),
		})
	})

	return mux
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// workerOpts carries the flag values the worker mode consumes, on top
// of the serve options it shares (ingest, capacity sizing, admin).
type workerOpts struct {
	coordAddr string
	name      string
	minShare  float64
	lease     time.Duration
	serve     serveOpts
}

// runWorker runs one monitor as a cluster member: ingest feeds a local
// System wrapped in a loadshed.Node whose transport is a TCP client of
// the remote coordinator. Coordination is advisory — an unreachable
// coordinator degrades the worker to local-only shedding on its last
// granted (or initial) capacity, and a reconnect rejoins the cluster.
func runWorker(ctx context.Context, mkQs func() []loadshed.Query, o workerOpts) {
	name := o.name
	if name == "" {
		name = fmt.Sprintf("worker%d", os.Getpid())
	}

	src, closeSrc, desc, err := openIngest(o.serve.ingest, o.serve)
	die(err)
	fmt.Printf("ingest: %s\n", desc)

	capacity := o.serve.capacity
	if capacity <= 0 {
		// The initial local budget, which also carries the worker through
		// coordinator outages; the first grant replaces it.
		fmt.Println("measuring full-rate demand (generated probe) ...")
		cfg, err := loadshed.PresetConfig(o.serve.preset, o.serve.seed, o.serve.dur, o.serve.scale)
		die(err)
		ovh, demand := loadshed.MeasureLoad(loadshed.NewGenerator(cfg), mkQs(), o.serve.seed+1)
		capacity = ovh + demand/o.serve.overload
		fmt.Printf("demand %.3g cycles/bin (+%.3g overhead), initial capacity %.3g (overload %.2fx)\n",
			demand, ovh, capacity, o.serve.overload)
	}

	cfg := loadshed.Config{
		Capacity:        capacity,
		Seed:            o.serve.seed + 2,
		CustomShedding:  o.serve.customOn,
		ChangeDetection: o.serve.detectOn,
		Workers:         o.serve.workers,
	}
	cfg.Scheme, err = loadshed.ParseScheme(o.serve.scheme)
	die(err)
	if cfg.Scheme == loadshed.Predictive {
		cfg.Strategy, err = loadshed.StrategyByName(o.serve.strategy)
		die(err)
	}

	client, err := loadshed.DialCoordinator(o.coordAddr, name, loadshed.CoordClientConfig{
		MinShare: o.minShare,
		Lease:    o.lease,
	})
	if client == nil {
		die(err)
	}
	defer client.Close()
	if err != nil {
		fmt.Printf("coordinator %s unreachable (%v); shedding locally until it appears\n", o.coordAddr, err)
	} else {
		fmt.Printf("joined coordinator %s as %q\n", o.coordAddr, name)
	}

	sys := loadshed.New(cfg, mkQs())
	node := loadshed.NewNode(sys, client, loadshed.NodeConfig{Name: name, MinShare: o.minShare})
	windowBins := int(o.serve.window / src.TimeBin())
	sink := &serveSink{roll: loadshed.NewRollingStats(windowBins)}
	live, _ := src.(*loadshed.LiveSource)

	var admin *http.Server
	if o.serve.admin != "" {
		ln, err := net.Listen("tcp", o.serve.admin)
		die(err)
		admin = &http.Server{Handler: adminMux(sys, sink, live, o.serve.seed, func(w io.Writer) {
			fmt.Fprintln(w, "# HELP lsd_coord_connected Whether the coordinator connection is up.")
			fmt.Fprintln(w, "# TYPE lsd_coord_connected gauge")
			fmt.Fprintf(w, "lsd_coord_connected %d\n", b2i(client.Connected()))
			fmt.Fprintln(w, "# HELP lsd_coord_degraded Whether the worker is shedding on local capacity only (no lease-fresh grant).")
			fmt.Fprintln(w, "# TYPE lsd_coord_degraded gauge")
			fmt.Fprintf(w, "lsd_coord_degraded %d\n", b2i(client.Degraded()))
			fmt.Fprintln(w, "# HELP lsd_coord_reconnects_total Times the coordinator link was re-established.")
			fmt.Fprintln(w, "# TYPE lsd_coord_reconnects_total counter")
			fmt.Fprintf(w, "lsd_coord_reconnects_total %d\n", client.Reconnects())
			var grantCap float64
			if g, ok := client.Grant(); ok {
				grantCap = g.Capacity
			}
			fmt.Fprintln(w, "# HELP lsd_coord_grant_capacity Cycle budget of the current lease-fresh grant (0 while degraded).")
			fmt.Fprintln(w, "# TYPE lsd_coord_grant_capacity gauge")
			fmt.Fprintf(w, "lsd_coord_grant_capacity %g\n", grantCap)
			fmt.Fprintln(w, "# HELP lsd_node_capacity Cycle budget per bin the engine currently runs under.")
			fmt.Fprintln(w, "# TYPE lsd_node_capacity gauge")
			fmt.Fprintf(w, "lsd_node_capacity %g\n", sys.Governor().Capacity())
		})}
		go admin.Serve(ln)
		fmt.Printf("admin plane on http://%s (healthz, readyz, metrics, queries)\n", ln.Addr())
	}

	unblock := context.AfterFunc(ctx, closeSrc)
	defer unblock()

	fmt.Printf("serving as cluster worker (%s scheme) ...\n", o.serve.scheme)
	streamErr := node.StreamContext(ctx, src, sink)
	closeSrc()
	client.Close()
	if admin != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		admin.Shutdown(shCtx)
	}

	if streamErr != nil {
		fmt.Println("signal received: stream stopped at a bin boundary")
	}
	if err := loadshed.SourceErr(src); err != nil {
		die(fmt.Errorf("ingest failed: %w", err))
	}

	snap, _ := sink.snapshot()
	dropPct := 0.0
	if snap.WirePkts > 0 {
		dropPct = 100 * float64(snap.DropPkts) / float64(snap.WirePkts)
	}
	fmt.Printf("served %d bins, %d intervals: %d of %d packets dropped uncontrolled (%.3f%%)\n",
		snap.Bins, snap.Intervals, snap.DropPkts, snap.WirePkts, dropPct)
}
