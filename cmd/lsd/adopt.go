// adopt.go — the adoption half of worker failover: when the
// coordinator decides an orphaned shard should live here (its worker
// crashed, or an operator posted /cluster/migrate), it pushes the
// shard's checkpoint over this worker's coordinator link. The offer
// carries everything needed to take over: a spec to rebuild the System,
// a snapshot to restore its state, and the bin to reposition the
// traffic source at. Each adopted shard runs as its own Node with its
// own coordinator connection under the dead shard's name, so budget
// allocation sees the shard itself come back, not a bigger host.
package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/pkg/loadshed"
)

// adoptionState tracks the shards a worker runs on behalf of others —
// the gauge/counter pair behind lsd_adopted_shards and
// lsd_adoptions_total, plus the WaitGroup that keeps the worker process
// alive until its adopted shards finish.
type adoptionState struct {
	wg     sync.WaitGroup
	active atomic.Int64
	total  atomic.Int64
}

func newAdoptionState() *adoptionState { return &adoptionState{} }

// Active is the number of adopted shards currently running.
func (a *adoptionState) Active() int64 { return a.active.Load() }

// Total is the number of adoption offers ever accepted.
func (a *adoptionState) Total() int64 { return a.total.Load() }

// Wait blocks until every running adopted shard has finished.
func (a *adoptionState) Wait() { a.wg.Wait() }

// adoptionLoop accepts adoption offers from the worker's coordinator
// link until ctx ends, running each adopted shard on its own goroutine.
func adoptionLoop(ctx context.Context, client *loadshed.CoordClient, st *adoptionState, o workerOpts) {
	for {
		select {
		case <-ctx.Done():
			return
		case offer := <-client.Adoptions():
			st.wg.Add(1)
			st.total.Add(1)
			st.active.Add(1)
			go func(offer loadshed.AdoptOffer) {
				defer st.wg.Done()
				defer st.active.Add(-1)
				if err := runAdoptedShard(ctx, offer, o); err != nil {
					fmt.Printf("adoption of %q failed: %v\n", offer.Shard, err)
				}
			}(offer)
		}
	}
}

// runAdoptedShard resumes one orphaned shard from its checkpoint:
// rebuild the System from the spec, restore the snapshot, reopen the
// shard's traffic source positioned at the checkpoint bin, and stream
// under the shard's cluster name until the source ends, the shard is
// drained onward, or the worker shuts down.
func runAdoptedShard(ctx context.Context, offer loadshed.AdoptOffer, o workerOpts) error {
	cp, err := loadshed.DecodeShardCheckpoint(bytes.NewReader(offer.Checkpoint))
	if err != nil {
		return err
	}
	sys, err := cp.Spec.NewSystem()
	if err != nil {
		return err
	}
	if err := sys.Restore(cp.Snap); err != nil {
		return err
	}

	srcOpts := serveOpts{
		preset: cp.Spec.Preset,
		seed:   cp.Spec.TraceSeed,
		dur:    cp.Spec.TraceDur,
		scale:  cp.Spec.Scale,
	}
	src, closeSrc, desc, err := openIngest(cp.Spec.Ingest, srcOpts)
	if err != nil {
		return fmt.Errorf("reopen ingest %q: %w", cp.Spec.Ingest, err)
	}
	defer closeSrc()
	// Deterministic sources (generator, tailed or replayed files) resume
	// exactly at the checkpoint bin; a live socket has no past to skip
	// and resumes best-effort from the live stream.
	resumable := !strings.HasPrefix(cp.Spec.Ingest, "udp://") && !strings.HasPrefix(cp.Spec.Ingest, "unix://")
	if resumable {
		src = loadshed.ResumeSource(src, cp.Bin)
	}

	client, err := loadshed.DialCoordinator(o.coordAddr, cp.Node, loadshed.CoordClientConfig{
		MinShare: cp.Spec.MinShare,
		Lease:    o.lease,
		Key:      o.key,
	})
	if client == nil {
		return err
	}
	defer client.Close()

	node := loadshed.NewNode(sys, client, loadshed.NodeConfig{
		Name:            cp.Node,
		MinShare:        cp.Spec.MinShare,
		CheckpointEvery: o.ckptEvery,
		Spec:            cp.Spec,
		BinOffset:       cp.Bin,
	})

	unblock := context.AfterFunc(ctx, closeSrc)
	defer unblock()

	fmt.Printf("adopted shard %q from bin %d (ingest: %s)\n", cp.Node, cp.Bin, desc)
	streamErr := node.StreamContext(ctx, src, loadshed.DiscardSink{})
	closeSrc()
	switch {
	case node.Drained():
		fmt.Printf("adopted shard %q drained onward\n", cp.Node)
	case streamErr != nil:
		fmt.Printf("adopted shard %q stopped on signal\n", cp.Node)
	default:
		fmt.Printf("adopted shard %q finished its trace\n", cp.Node)
	}
	return loadshed.SourceErr(src)
}
