// serve.go — the long-running service mode of lsd: live packet ingest
// feeding the streaming engine, with an HTTP admin plane for health,
// Prometheus metrics and dynamic query registration. This is the
// deployment shape of the thesis system (§2.1): a monitor that runs
// indefinitely against a live link, sheds load under overload, and is
// operated — not restarted — when the query set changes.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/pkg/loadshed"
)

// serveOpts carries the flag values the serve mode consumes.
type serveOpts struct {
	admin    string // HTTP admin listen address
	ingest   string // gen | udp://host:port | unix:///path | tail:path
	preset   string
	seed     uint64
	dur      time.Duration
	scale    float64
	overload float64
	capacity float64 // explicit cycle budget per bin; 0 = probe
	window   time.Duration
	scheme   string
	strategy string
	customOn bool
	detectOn bool
	workers  int
}

// serveSink guards a RollingStats for concurrent reads: the engine
// writes it from the run loop while HTTP handlers snapshot it. It stays
// transient, so the engine's zero-allocation streaming path is intact.
type serveSink struct {
	mu    sync.Mutex
	roll  *loadshed.RollingStats
	ready bool // first bin processed — the readiness signal
}

func (s *serveSink) OnQuery(i int, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roll.OnQuery(i, name)
}

func (s *serveSink) OnBin(b *loadshed.BinStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roll.OnBin(b)
	s.ready = true
}

func (s *serveSink) OnInterval(iv *loadshed.IntervalResults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roll.OnInterval(iv)
}

// OnQueryRemove implements loadshed.QueryRemovalSink.
func (s *serveSink) OnQueryRemove(i int, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roll.OnQueryRemove(i, name)
}

// SinkTransient implements loadshed.TransientSink.
func (s *serveSink) SinkTransient() bool { return true }

func (s *serveSink) snapshot() (loadshed.RollingSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roll.Snapshot(), s.ready
}

// openIngest turns an ingest spec into a Source. The returned closer is
// safe to call more than once and from a context callback: closing the
// source is how a signal unblocks an engine waiting on a silent link.
func openIngest(spec string, o serveOpts) (loadshed.Source, func(), string, error) {
	switch {
	case spec == "gen":
		cfg, err := loadshed.PresetConfig(o.preset, o.seed, o.dur, o.scale)
		if err != nil {
			return nil, nil, "", err
		}
		cfg.MaxBins = -1 // run until signalled
		return loadshed.NewGenerator(cfg), func() {}, "generator (unbounded, preset " + o.preset + ")", nil
	case strings.HasPrefix(spec, "udp://"):
		l, err := loadshed.ListenLive("udp", strings.TrimPrefix(spec, "udp://"), loadshed.LiveConfig{})
		if err != nil {
			return nil, nil, "", err
		}
		return l, func() { l.Close() }, "udp " + l.Addr().String(), nil
	case strings.HasPrefix(spec, "unix://"):
		path := strings.TrimPrefix(spec, "unix://")
		l, err := loadshed.ListenLive("unixgram", path, loadshed.LiveConfig{})
		if err != nil {
			return nil, nil, "", err
		}
		return l, func() { l.Close() }, "unixgram " + path, nil
	case strings.HasPrefix(spec, "tail:"):
		path := strings.TrimPrefix(spec, "tail:")
		ts, err := loadshed.TailFile(path, 0)
		if err != nil {
			return nil, nil, "", err
		}
		return ts, func() { ts.Close() }, "tail " + path, nil
	default:
		return nil, nil, "", fmt.Errorf("unknown ingest spec %q (want gen, udp://host:port, unix:///path or tail:path)", spec)
	}
}

// runServe is the service main loop: open ingest, size the budget,
// start the admin plane, stream until a signal or the source ends, then
// shut both down in order and surface any source error.
func runServe(ctx context.Context, mkQs func() []loadshed.Query, o serveOpts) {
	src, closeSrc, desc, err := openIngest(o.ingest, o)
	die(err)
	fmt.Printf("ingest: %s\n", desc)

	capacity := o.capacity
	if capacity <= 0 {
		// No explicit budget: size one from a bounded generated probe of
		// the preset profile, the same procedure as -stream. For live
		// ingest the probe is a stated proxy — the budget models the
		// machine, not the (unknown) incoming traffic.
		fmt.Println("measuring full-rate demand (generated probe) ...")
		cfg, err := loadshed.PresetConfig(o.preset, o.seed, o.dur, o.scale)
		die(err)
		ovh, demand := loadshed.MeasureLoad(loadshed.NewGenerator(cfg), mkQs(), o.seed+1)
		capacity = ovh + demand/o.overload
		fmt.Printf("demand %.3g cycles/bin (+%.3g overhead), capacity %.3g (overload %.2fx)\n",
			demand, ovh, capacity, o.overload)
	}

	cfg := loadshed.Config{
		Capacity:        capacity,
		Seed:            o.seed + 2,
		CustomShedding:  o.customOn,
		ChangeDetection: o.detectOn,
		Workers:         o.workers,
	}
	cfg.Scheme, err = loadshed.ParseScheme(o.scheme)
	die(err)
	if cfg.Scheme == loadshed.Predictive {
		cfg.Strategy, err = loadshed.StrategyByName(o.strategy)
		die(err)
	}

	sys := loadshed.New(cfg, mkQs())
	windowBins := int(o.window / src.TimeBin())
	sink := &serveSink{roll: loadshed.NewRollingStats(windowBins)}
	live, _ := src.(*loadshed.LiveSource)

	ln, err := net.Listen("tcp", o.admin)
	die(err)
	srv := &http.Server{Handler: adminMux(sys, sink, live, o.seed, nil)}
	go srv.Serve(ln)
	fmt.Printf("admin plane on http://%s (healthz, readyz, metrics, queries)\n", ln.Addr())

	// A signal cancels ctx; the engine stops at the next bin boundary.
	// A blocking live or tail source must also be woken, which closing
	// it does — NextBatch then reports end-of-stream.
	unblock := context.AfterFunc(ctx, closeSrc)
	defer unblock()

	fmt.Printf("serving (%s scheme) ...\n", o.scheme)
	streamErr := sys.StreamContext(ctx, src, sink)
	closeSrc()

	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shCtx)

	if streamErr != nil {
		fmt.Println("signal received: stream stopped at a bin boundary")
	}
	if err := loadshed.SourceErr(src); err != nil {
		die(fmt.Errorf("ingest failed: %w", err))
	}

	snap, _ := sink.snapshot()
	dropPct := 0.0
	if snap.WirePkts > 0 {
		dropPct = 100 * float64(snap.DropPkts) / float64(snap.WirePkts)
	}
	fmt.Printf("served %d bins, %d intervals: %d of %d packets dropped uncontrolled (%.3f%%)\n",
		snap.Bins, snap.Intervals, snap.DropPkts, snap.WirePkts, dropPct)
}

// adminMux builds the admin plane. Handlers run concurrently with the
// stream: snapshots go through serveSink's mutex, registry calls go
// through the engine's own AddQuery/RemoveQuery locking, and live-source
// counters are atomics. A non-nil extraMetrics hook is appended to the
// /metrics output — worker mode uses it for its coordinator-link gauges.
func adminMux(sys *loadshed.System, sink *serveSink, live *loadshed.LiveSource, seed uint64, extraMetrics func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if _, ready := sink.snapshot(); !ready {
			http.Error(w, "no bins processed yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, _ := sink.snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		snap.WritePrometheus(w)
		fmt.Fprintln(w, "# HELP lsd_up Whether the monitor is serving.")
		fmt.Fprintln(w, "# TYPE lsd_up gauge")
		fmt.Fprintln(w, "lsd_up 1")
		if live != nil {
			fmt.Fprintln(w, "# HELP lsd_ingest_bad_frames_total Frames rejected by wire-format validation.")
			fmt.Fprintln(w, "# TYPE lsd_ingest_bad_frames_total counter")
			fmt.Fprintf(w, "lsd_ingest_bad_frames_total %d\n", live.BadFrames())
			fmt.Fprintln(w, "# HELP lsd_ingest_dropped_bins_total Whole bins discarded because the engine lagged the listener.")
			fmt.Fprintln(w, "# TYPE lsd_ingest_dropped_bins_total counter")
			fmt.Fprintf(w, "lsd_ingest_dropped_bins_total %d\n", live.DroppedBins())
		}
		if extraMetrics != nil {
			extraMetrics(w)
		}
	})

	type queryInfo struct {
		Name   string  `json:"name"`
		Active bool    `json:"active"`
		Rate   float64 `json:"rate"`
	}
	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, r *http.Request) {
		snap, _ := sink.snapshot()
		out := make([]queryInfo, len(snap.Queries))
		for i, q := range snap.Queries {
			out[i] = queryInfo{Name: q, Active: snap.Active[i], Rate: snap.MeanRates[i]}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})

	// POST /queries registers a query by kind; it joins at the next
	// measurement-interval boundary (the engine's quiesce point), so the
	// success status is 202 Accepted, not 200. Accepts ?kind=... or a
	// JSON body {"kind": "...", "seed": n}.
	mux.HandleFunc("POST /queries", func(w http.ResponseWriter, r *http.Request) {
		req := struct {
			Kind string `json:"kind"`
			Seed uint64 `json:"seed"`
		}{Seed: seed}
		if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		} else {
			req.Kind = r.FormValue("kind")
		}
		q, err := loadshed.QueryByName(req.Kind, loadshed.QueryConfig{Seed: req.Seed})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := sys.AddQuery(q); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{
			"status": "accepted", "query": q.Name(),
			"note": "joins at the next measurement-interval boundary",
		})
	})

	mux.HandleFunc("DELETE /queries/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := sys.RemoveQuery(name); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{
			"status": "accepted", "query": name,
			"note": "retires after its final flush at the next interval boundary",
		})
	})

	return mux
}

// runFeed is the probe half of a live deployment: it generates the
// preset traffic profile and forwards it to a serving lsd's ingest
// socket, paced so each batch is sent at its trace-time offset — the
// wall-clock shape a capture process would produce.
func runFeed(ctx context.Context, spec, preset string, seed uint64, dur time.Duration, scale float64) {
	var network, addr string
	switch {
	case strings.HasPrefix(spec, "udp://"):
		network, addr = "udp", strings.TrimPrefix(spec, "udp://")
	case strings.HasPrefix(spec, "unix://"):
		network, addr = "unixgram", strings.TrimPrefix(spec, "unix://")
	default:
		die(fmt.Errorf("unknown feed target %q (want udp://host:port or unix:///path)", spec))
	}
	cfg, err := loadshed.PresetConfig(preset, seed, dur, scale)
	die(err)
	snd, err := loadshed.DialLive(network, addr)
	die(err)
	defer snd.Close()

	src := loadshed.NewGenerator(cfg)
	start := time.Now()
	sent := 0
	for ctx.Err() == nil {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		if d := time.Until(start.Add(b.Start)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				fmt.Printf("feed interrupted after %d packets\n", sent)
				return
			}
		}
		if err := snd.SendBatch(&b); err != nil {
			die(fmt.Errorf("feed: %w", err))
		}
		sent += len(b.Pkts)
	}
	fmt.Printf("fed %d packets over %v of trace time to %s\n", sent, dur, spec)
}
