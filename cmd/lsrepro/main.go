// Command lsrepro regenerates the tables and figures of the paper's
// evaluation. Each experiment is addressed by the identifier used in
// DESIGN.md:
//
//	lsrepro -list
//	lsrepro -exp fig4.1
//	lsrepro -exp all -scale 0.2 -dur 2m
//
// Output is text: tables as aligned columns, figures as downsampled x/y
// listings suitable for replotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		seed  = flag.Uint64("seed", 1, "base random seed")
		scale = flag.Float64("scale", 0.1, "traffic rate scale vs the paper's rates")
		dur   = flag.Duration("dur", 60*time.Second, "virtual duration per run")
		quick = flag.Bool("quick", false, "shrink parameter sweeps")
	)
	flag.Parse()

	if *list || *exp == "" {
		titles := experiments.Titles()
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-11s %s\n", id, titles[id])
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, Dur: *dur, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsrepro:", err)
			os.Exit(1)
		}
		experiments.Render(os.Stdout, res)
	}
}
