// Command benchjson runs the repository's benchmarks and writes the
// results as JSON, so every PR can commit a machine-readable perf
// snapshot (BENCH_<n>.json) and CI can gate on allocation regressions
// without a flaky wall-clock threshold.
//
// Usage:
//
//	go run ./cmd/benchjson                       # micro + pipeline set -> stdout
//	go run ./cmd/benchjson -out BENCH_5.json     # commit a new PR's snapshot
//	go run ./cmd/benchjson -bench 'Micro' -benchtime 2s -out bench.json
//	go run ./cmd/benchjson -maxallocs 'BenchmarkMicroFeatureExtraction=0'
//	go run ./cmd/benchjson -compare BENCH_5.json -regress-allocs 0.1
//
// Each PR commits its snapshot under a fresh BENCH_<n>.json (never
// overwrite an earlier PR's file — the sequence is the perf history).
//
// The -maxallocs gate takes comma-separated name=N pairs (names match
// the benchmark function, without the -cpus suffix) and exits nonzero
// when any matching benchmark reports more than N allocs/op — the
// allocation gate CI runs on the extraction fast path.
//
// The -compare gate loads an earlier snapshot, prints the per-benchmark
// ns/op, B/op, allocs/op and pkts/s deltas, and exits nonzero when any
// benchmark regresses beyond the configured fractional thresholds
// (-regress-ns, -regress-b, -regress-allocs, -regress-pkts; a negative
// threshold disables that dimension — the wall-clock dimensions ns/op
// and pkts/s are disabled by default because shared CI runners make
// them flaky, while allocation counts are deterministic). pkts/s is a
// higher-is-better custom metric, so its threshold bounds the allowed
// fractional throughput *drop*.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line, decoded.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BPerOp      float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the committed snapshot format.
type File struct {
	Tool       string   `json:"tool"`
	Go         string   `json:"go"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Packages   []string `json:"packages"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "BenchmarkMicro|BenchmarkPipelineSaturation|BenchmarkStreamLongRun|BenchmarkRunLongRun|BenchmarkCluster$|BenchmarkExtract$|BenchmarkMultiRes|BenchmarkHashAgg",
		"benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "passed to go test -benchtime")
	count := flag.Int("count", 1, "passed to go test -count")
	out := flag.String("out", "-", "output JSON path (default - writes to stdout; commit snapshots as BENCH_<n>.json, one per PR)")
	maxallocs := flag.String("maxallocs", "", "comma-separated name=N allocation gates (fail if allocs/op exceed N)")
	compare := flag.String("compare", "", "earlier snapshot to diff against; prints deltas and gates on the -regress-* thresholds")
	regressNs := flag.Float64("regress-ns", -1, "max allowed fractional ns/op regression vs -compare (negative disables)")
	regressB := flag.Float64("regress-b", 0.35, "max allowed fractional B/op regression vs -compare (negative disables)")
	regressAllocs := flag.Float64("regress-allocs", 0.10, "max allowed fractional allocs/op regression vs -compare (negative disables)")
	regressPkts := flag.Float64("regress-pkts", -1, "max allowed fractional pkts/s drop vs -compare (higher is better; negative disables)")
	pkgs := flag.String("pkgs", ".,./pkg/loadshed,./internal/bitmap,./internal/hash,./internal/features", "comma-separated packages to benchmark")
	flag.Parse()

	pkgList := strings.Split(*pkgs, ",")
	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	args = append(args, pkgList...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n%s", err, buf.String())
		os.Exit(1)
	}

	results := parse(buf.String())
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in go test output:\n%s", buf.String())
		os.Exit(1)
	}

	f := File{
		Tool:       "cmd/benchjson",
		Go:         runtime.Version(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Packages:   pkgList,
		Benchmarks: results,
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	} else {
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(results), *out)
	}

	failed := gate(results, *maxallocs)
	if *compare != "" {
		old, err := loadSnapshot(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -compare: %v\n", err)
			os.Exit(1)
		}
		if compareSnapshots(results, old, *regressNs, *regressB, *regressAllocs, *regressPkts) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadSnapshot reads a committed BENCH_<n>.json.
func loadSnapshot(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

// regressEps absorbs quantization at tiny baselines: a benchmark that
// reported 0 allocs/op may drift to a fraction of one without that
// being a meaningful regression, and B/op jitters by a few bytes.
const (
	epsNs     = 50.0
	epsB      = 64.0
	epsAllocs = 1.0
)

// compareSnapshots prints the per-benchmark deltas against old and
// applies the fractional regression thresholds (negative = dimension
// disabled). It returns true when any gate fails. Benchmarks present
// only on one side are reported but never fail the gate — the set
// evolves PR to PR. pkts/s is higher-is-better: its delta column only
// appears for benchmarks that report the metric, and its gate fires on
// a fractional *drop* beyond tPkts.
func compareSnapshots(results []Result, old *File, tNs, tB, tAllocs, tPkts float64) bool {
	prev := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	failed := false
	fmt.Printf("benchjson: comparing against %s (%s)\n", old.Tool, old.Go)
	fmt.Printf("%-42s %14s %14s %14s %14s\n", "benchmark", "ns/op", "B/op", "allocs/op", "pkts/s")
	check := func(name, dim string, now, was, thresh, eps float64) string {
		delta := fmtDelta(now, was)
		if thresh >= 0 && now > was*(1+thresh)+eps {
			failed = true
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %s regressed %v -> %v (limit +%.0f%%)\n",
				name, dim, was, now, thresh*100)
			delta += "!"
		}
		return delta
	}
	for _, r := range results {
		p, ok := prev[r.Name]
		if !ok {
			fmt.Printf("%-42s %14s %14s %14s %14s  (new)\n", r.Name, "-", "-", "-", "-")
			continue
		}
		delete(prev, r.Name)
		dNs := check(r.Name, "ns/op", r.NsPerOp, p.NsPerOp, tNs, epsNs)
		dB := check(r.Name, "B/op", r.BPerOp, p.BPerOp, tB, epsB)
		dA := check(r.Name, "allocs/op", r.AllocsPerOp, p.AllocsPerOp, tAllocs, epsAllocs)
		dP := "-"
		if now, was := r.Metrics["pkts/s"], p.Metrics["pkts/s"]; now > 0 && was > 0 {
			dP = fmtDelta(now, was)
			if tPkts >= 0 && now < was*(1-tPkts) {
				failed = true
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: pkts/s dropped %v -> %v (limit -%.0f%%)\n",
					r.Name, was, now, tPkts*100)
				dP += "!"
			}
		}
		fmt.Printf("%-42s %14s %14s %14s %14s\n", r.Name, dNs, dB, dA, dP)
	}
	for name := range prev {
		fmt.Printf("%-42s %14s %14s %14s %14s  (not run)\n", name, "-", "-", "-", "-")
	}
	return failed
}

// fmtDelta renders a now-vs-was change as a signed percentage.
func fmtDelta(now, was float64) string {
	if was == 0 {
		if now == 0 {
			return "0%"
		}
		return fmt.Sprintf("+%.4g", now)
	}
	return fmt.Sprintf("%+.1f%%", (now/was-1)*100)
}

// parse decodes `go test -bench` output: "pkg:" lines set the current
// package, benchmark lines carry an iteration count followed by
// value/unit pairs (ns/op, MB/s, B/op, allocs/op, plus any
// b.ReportMetric extras).
func parse(output string) []Result {
	var results []Result
	pkg := ""
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if after, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(after)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -cpus suffix
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: name, Pkg: pkg, Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerS = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results = append(results, r)
	}
	return results
}

// gate applies the -maxallocs thresholds; it returns true when any
// benchmark exceeds its cap (or a named benchmark never ran).
func gate(results []Result, spec string) bool {
	failed := false
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, limStr, ok := strings.Cut(pair, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -maxallocs entry %q (want name=N)\n", pair)
			failed = true
			continue
		}
		lim, err := strconv.ParseFloat(limStr, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -maxallocs limit %q: %v\n", limStr, err)
			failed = true
			continue
		}
		matched := false
		for _, r := range results {
			if r.Name != name {
				continue
			}
			matched = true
			if r.AllocsPerOp > lim {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %v allocs/op exceeds gate of %v\n", r.Name, r.AllocsPerOp, lim)
				failed = true
			} else {
				fmt.Printf("benchjson: ok %s: %v allocs/op within gate %v\n", r.Name, r.AllocsPerOp, lim)
			}
		}
		if !matched {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL gate %s: benchmark did not run\n", name)
			failed = true
		}
	}
	return failed
}
